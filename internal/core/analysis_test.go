package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"profirt/internal/timeunit"
)

// twoMasterNet is the hand-worked fixture used across the tests:
//
//	M1: A(Ch=300 D=9000 T=10000), B(Ch=200 D=5000 T=8000), low=1000
//	M2: C(Ch=500 D=20000 T=20000),                          low=800
//	TTR = 2000, no token-pass overhead.
//
// C_M^1 = 1000, C_M^2 = 800 ⇒ T_del = 1800, T_cycle = 3800.
// Refined: overrunner M1 → 1000 + 500; overrunner M2 → 800 + 300;
// refined T_del = 1500.
func twoMasterNet() Network {
	return Network{
		TTR: 2000,
		Masters: []Master{
			{
				Name: "M1",
				High: []Stream{
					{Name: "A", Ch: 300, D: 9000, T: 10000},
					{Name: "B", Ch: 200, D: 5000, T: 8000},
				},
				LongestLow: 1000,
			},
			{
				Name:       "M2",
				High:       []Stream{{Name: "C", Ch: 500, D: 20000, T: 20000}},
				LongestLow: 800,
			},
		},
	}
}

func TestNetworkValidate(t *testing.T) {
	n := twoMasterNet()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoMasterNet()
	bad.TTR = 0
	if bad.Validate() == nil {
		t.Error("zero TTR must fail")
	}
	bad = twoMasterNet()
	bad.Masters = nil
	if bad.Validate() == nil {
		t.Error("no masters must fail")
	}
	bad = twoMasterNet()
	bad.Masters[0].High[0].Ch = 0
	if bad.Validate() == nil {
		t.Error("zero Ch must fail")
	}
	bad = twoMasterNet()
	bad.Masters[0].LongestLow = -1
	if bad.Validate() == nil {
		t.Error("negative low must fail")
	}
	bad = twoMasterNet()
	bad.TokenPass = -1
	if bad.Validate() == nil {
		t.Error("negative token pass must fail")
	}
	bad = twoMasterNet()
	bad.Masters[0].High[0].J = -1
	if bad.Validate() == nil {
		t.Error("negative jitter must fail")
	}
}

func TestMasterAggregates(t *testing.T) {
	m := twoMasterNet().Masters[0]
	if m.NH() != 2 {
		t.Errorf("NH = %d, want 2", m.NH())
	}
	if m.LongestHigh() != 300 {
		t.Errorf("LongestHigh = %d, want 300", m.LongestHigh())
	}
	if m.LongestCycle() != 1000 {
		t.Errorf("LongestCycle = %d, want 1000", m.LongestCycle())
	}
	empty := Master{Name: "idle"}
	if empty.LongestHigh() != 0 || empty.LongestCycle() != 0 {
		t.Error("empty master aggregates must be zero")
	}
}

func TestTokenDelayAndCycle(t *testing.T) {
	n := twoMasterNet()
	if got := n.TokenDelay(); got != 1800 {
		t.Errorf("TokenDelay = %d, want 1800 (Eq. 13)", got)
	}
	if got := n.TokenCycle(); got != 3800 {
		t.Errorf("TokenCycle = %d, want 3800 (Eq. 14)", got)
	}
	if got := n.RefinedTokenDelay(); got != 1500 {
		t.Errorf("RefinedTokenDelay = %d, want 1500", got)
	}
	if got := n.RefinedTokenCycle(); got != 3500 {
		t.Errorf("RefinedTokenCycle = %d, want 3500", got)
	}
	// Refined never exceeds the literal Eq. 13 bound.
	if n.RefinedTokenDelay() > n.TokenDelay() {
		t.Error("refined bound must not exceed Eq. 13")
	}
	// Token-pass overhead adds once per hop.
	n.TokenPass = 70
	if got := n.TokenDelay(); got != 1800+140 {
		t.Errorf("TokenDelay with overhead = %d, want 1940", got)
	}
}

func TestRefinedTokenDelayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := Network{TTR: 1000}
		for k := 0; k < 1+rng.Intn(5); k++ {
			m := Master{LongestLow: Ticks(rng.Intn(500))}
			for s := 0; s < rng.Intn(4); s++ {
				m.High = append(m.High, Stream{
					Name: "s", Ch: Ticks(1 + rng.Intn(500)),
					D: 10_000, T: 10_000,
				})
			}
			n.Masters = append(n.Masters, m)
		}
		return n.RefinedTokenDelay() <= n.TokenDelay()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGapPollInTokenDelay(t *testing.T) {
	n := twoMasterNet() // C_M = 1000 and 800, T_del = 1800
	// A poll shorter than every C_M changes nothing.
	n.GapPoll = 500
	if got := n.TokenDelay(); got != 1800 {
		t.Errorf("short poll: T_del = %d, want 1800", got)
	}
	// A poll longer than M2's C_M (800) replaces it in the sum.
	n.GapPoll = 900
	if got := n.TokenDelay(); got != 1000+900 {
		t.Errorf("long poll: T_del = %d, want 1900", got)
	}
	// Refined bound also accounts for the overrunner's poll.
	if got := n.RefinedTokenDelay(); got < 1500 {
		t.Errorf("refined with poll = %d, want >= 1500", got)
	}
	// Negative polls are rejected.
	n.GapPoll = -1
	if n.Validate() == nil {
		t.Error("negative GapPoll must fail validation")
	}
}

func TestFCFSResponseAndSchedulability(t *testing.T) {
	n := twoMasterNet()
	tc := n.TokenCycle() // 3800
	// Eq. 11: M1 has nh=2 ⇒ R = 7600 for both streams; M2 nh=1 ⇒ 3800.
	if got := FCFSResponseTime(n.Masters[0], tc); got != 7600 {
		t.Errorf("M1 R = %d, want 7600", got)
	}
	if got := FCFSResponseTime(n.Masters[1], tc); got != 3800 {
		t.Errorf("M2 R = %d, want 3800", got)
	}
	// Q = R − Ch.
	if got := FCFSQueuingDelay(n.Masters[0], 0, tc); got != 7600-300 {
		t.Errorf("Q_A = %d, want %d", got, 7600-300)
	}
	// Eq. 12: B has D=5000 < 7600 ⇒ unschedulable; A (D=9000 ≥ 7600)
	// and C (D=20000 ≥ 3800) pass.
	ok, verdicts := FCFSSchedulable(n)
	if ok {
		t.Error("network must be FCFS-unschedulable (B misses)")
	}
	if len(verdicts) != 3 {
		t.Fatalf("verdicts = %d, want 3", len(verdicts))
	}
	byStream := map[string]StreamVerdict{}
	for _, v := range verdicts {
		byStream[v.Stream] = v
	}
	if byStream["B"].OK {
		t.Error("B must fail at TTR=2000")
	}
	if !byStream["A"].OK || !byStream["C"].OK {
		t.Error("A and C must pass at TTR=2000")
	}
}

func TestMaxTTR(t *testing.T) {
	n := twoMasterNet()
	// Eq. 15: min(9000/2, 5000/2, 20000/1) − 1800 = 2500 − 1800 = 700.
	got, err := MaxTTR(n)
	if err != nil {
		t.Fatal(err)
	}
	if got != 700 {
		t.Errorf("MaxTTR = %d, want 700", got)
	}
	// Setting TTR to the bound makes FCFS schedulable; bound+1 must not.
	n.TTR = got
	if ok, _ := FCFSSchedulable(n); !ok {
		t.Error("network must be schedulable at the Eq. 15 bound")
	}
	n.TTR = got + 1
	if ok, _ := FCFSSchedulable(n); ok {
		t.Error("network must be unschedulable just above the bound")
	}

	// Infeasible deadline structure.
	tight := twoMasterNet()
	tight.Masters[0].High[1].D = 100
	if _, err := MaxTTR(tight); err == nil {
		t.Error("expected infeasibility error")
	}

	// No high streams at all.
	if _, err := MaxTTR(Network{TTR: 1, Masters: []Master{{Name: "m"}}}); err == nil {
		t.Error("expected error with no high streams")
	}
}

func TestDMResponseTimesHandComputed(t *testing.T) {
	streams := []Stream{
		{Name: "X", D: 1000, T: 1000},
		{Name: "Y", D: 2000, T: 2000},
	}
	const tc = 100

	lit := DMResponseTimes(streams, tc, DMOptions{Literal: true})
	// X: T* = T_cycle (Y is lower) ⇒ R = 100. Y: lowest ⇒ T* = 0,
	// interference ⌈R/1000⌉·100 → R = 100.
	if lit[0] != 100 || lit[1] != 100 {
		t.Errorf("literal = %v, want [100 100]", lit)
	}

	rev := DMResponseTimes(streams, tc, DMOptions{})
	// X: w = B = 100, R = 200. Y: B = 0 (no lower high, no low traffic),
	// w = (⌊w/1000⌋+1)·100 = 100, R = 200.
	if rev[0] != 200 || rev[1] != 200 {
		t.Errorf("revised = %v, want [200 200]", rev)
	}

	// Low-priority traffic adds blocking to the lowest stream too.
	revLow := DMResponseTimes(streams, tc, DMOptions{BlockingFromLowPriority: true})
	if revLow[1] != 300 {
		t.Errorf("revised+low = %v, want Y = 300", revLow)
	}
}

func TestDMPriorityTiesByIndex(t *testing.T) {
	streams := []Stream{
		{Name: "first", D: 500, T: 10_000},
		{Name: "second", D: 500, T: 10_000},
		{Name: "third", D: 500, T: 10_000},
	}
	rs := DMResponseTimes(streams, 50, DMOptions{})
	// "first" outranks the equal-deadline peers: it pays one blocking
	// visit + own (100); "third" waits for both peers (150). With two
	// streams the blocking and interference visits coincide numerically,
	// so three streams are needed to observe the tie order.
	if rs[0] != 100 {
		t.Errorf("first = %v, want 100", rs[0])
	}
	if rs[2] != 150 {
		t.Errorf("third = %v, want 150", rs[2])
	}
	if rs[2] <= rs[0] {
		t.Errorf("tie-break wrong: %v", rs)
	}
}

func TestDMInterferenceGrowth(t *testing.T) {
	// A tight stream plus a fast higher-priority stream: interference
	// accumulates over multiple token cycles.
	streams := []Stream{
		{Name: "fast", D: 300, T: 300},
		{Name: "slow", D: 5000, T: 5000},
	}
	const tc = 100
	rs := DMResponseTimes(streams, tc, DMOptions{})
	// slow: B=0; w: seed 100 → (⌊100/300⌋+1)·100 = 100 ✓; R = 200?
	// w=100: floor(100/300)=0 ⇒ 100. R = 200.
	if rs[1] != 200 {
		t.Errorf("slow = %v, want 200", rs[1])
	}
	// Make fast really fast: T=100 ⇒ every cycle brings a new request ⇒
	// divergence for slow.
	streams[0].T = 100
	streams[0].D = 100
	rs = DMResponseTimes(streams, tc, DMOptions{})
	if rs[1] != timeunit.MaxTicks {
		t.Errorf("slow under saturation = %v, want MaxTicks", rs[1])
	}
}

func TestDMJitterIncreasesInterference(t *testing.T) {
	base := []Stream{
		{Name: "hp", D: 400, T: 1000},
		{Name: "lp", D: 5000, T: 5000},
	}
	const tc = 100
	r0 := DMResponseTimes(base, tc, DMOptions{})
	jit := []Stream{
		{Name: "hp", D: 400, T: 1000, J: 900},
		{Name: "lp", D: 5000, T: 5000},
	}
	r1 := DMResponseTimes(jit, tc, DMOptions{})
	if r1[1] <= r0[1] {
		t.Errorf("jitter must increase lp interference: %v vs %v", r1[1], r0[1])
	}
}

func TestEDFResponseTimesHandComputed(t *testing.T) {
	single := []Stream{{Name: "S", D: 500, T: 1000}}
	rs := EDFResponseTimes(single, 100, EDFOptions{})
	if rs[0] != 100 {
		t.Errorf("single-stream EDF R = %v, want T_cycle", rs[0])
	}

	two := []Stream{
		{Name: "X", D: 1000, T: 2000},
		{Name: "Y", D: 3000, T: 3000},
	}
	rs = EDFResponseTimes(two, 100, EDFOptions{})
	// Worked in the package docs: X blocked once by Y (later deadline)
	// then transmitted; Y interfered once by X. Both 200.
	if rs[0] != 200 || rs[1] != 200 {
		t.Errorf("EDF = %v, want [200 200]", rs)
	}

	// Low-priority traffic forces blocking everywhere.
	rs = EDFResponseTimes(two, 100, EDFOptions{BlockingFromLowPriority: true})
	if rs[1] != 300 { // blocking + X interference + own
		t.Errorf("EDF with low traffic: Y = %v, want 300", rs[1])
	}
}

func TestEDFEmptyAndSaturated(t *testing.T) {
	if rs := EDFResponseTimes(nil, 100, EDFOptions{}); len(rs) != 0 {
		t.Error("empty input must yield empty output")
	}
	sat := []Stream{
		{Name: "a", D: 100, T: 100},
		{Name: "b", D: 100, T: 100},
	} // 2·T_cycle per 100 ticks with T_cycle=100 ⇒ saturated
	rs := EDFResponseTimes(sat, 100, EDFOptions{Horizon: 10_000})
	for i, r := range rs {
		if r != timeunit.MaxTicks {
			t.Errorf("saturated stream %d = %v, want MaxTicks", i, r)
		}
	}
}

func TestSchedulableNetVariants(t *testing.T) {
	n := twoMasterNet()
	n.TTR = 700 // the Eq. 15 bound: FCFS-schedulable
	okF, _ := FCFSSchedulable(n)
	if !okF {
		t.Fatal("FCFS should pass at TTR=700")
	}
	okD, vd := DMSchedulable(n, DMOptions{})
	if !okD {
		t.Errorf("DM should pass where FCFS passes: %+v", vd)
	}
	okE, ve := EDFSchedulableNet(n, EDFOptions{})
	if !okE {
		t.Errorf("EDF should pass where FCFS passes: %+v", ve)
	}
	// Headline claim: a deadline too tight for FCFS can be held by
	// DM/EDF. With nh = 3, FCFS charges every stream 3·T_cycle while
	// the priority queue charges the tightest stream only one blocking
	// visit plus its own (2·T_cycle). Note nh = 2 is the degenerate
	// case where FCFS and the one-slot blocking coincide — the benefit
	// needs nh >= 3.
	n2 := Network{
		TTR: 1000,
		Masters: []Master{{
			Name: "M1",
			High: []Stream{
				{Name: "tight", Ch: 100, D: 1, T: 50_000}, // D set below
				{Name: "s2", Ch: 100, D: 40_000, T: 50_000},
				{Name: "s3", Ch: 100, D: 40_000, T: 50_000},
			},
		}},
	}
	tc2 := n2.TokenCycle() // 1000 + 100 = 1100
	n2.Masters[0].High[0].D = 3*tc2 - 1
	okF2, _ := FCFSSchedulable(n2)
	if okF2 {
		t.Fatal("tight must fail FCFS at D = 3·T_cycle − 1")
	}
	okD2, vd2 := DMSchedulable(n2, DMOptions{})
	if !okD2 {
		t.Errorf("DM must hold the tighter deadline (headline claim): %+v", vd2)
	}
	okE2, ve2 := EDFSchedulableNet(n2, EDFOptions{})
	if !okE2 {
		t.Errorf("EDF must hold the tighter deadline (headline claim): %+v", ve2)
	}
}

func TestMessageBoundProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nStreams := 1 + rng.Intn(4)
		streams := make([]Stream, nStreams)
		const tc = 100
		for i := range streams {
			T := Ticks(1000*(1+rng.Intn(8))) + Ticks(rng.Intn(500))
			d := Ticks(400) + Ticks(rng.Intn(int(T)))
			streams[i] = Stream{Name: "s", Ch: 80, D: d, T: T, J: Ticks(rng.Intn(200))}
		}
		lit := DMResponseTimes(streams, tc, DMOptions{Literal: true})
		rev := DMResponseTimes(streams, tc, DMOptions{})
		edf := EDFResponseTimes(streams, tc, EDFOptions{})
		for i := range streams {
			// Revised DM dominates literal; all bounds cover at least
			// one token cycle.
			if rev[i] != timeunit.MaxTicks && lit[i] != timeunit.MaxTicks && rev[i] < lit[i] {
				return false
			}
			if rev[i] < tc || edf[i] < tc {
				return false
			}
			if lit[i] != timeunit.MaxTicks && lit[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEndToEnd(t *testing.T) {
	e := EndToEnd{Generation: 50, Queuing: 200, Cycle: 100, Delivery: 25}
	if e.Total() != 375 {
		t.Errorf("Total = %v, want 375", e.Total())
	}
	c := Compose(50, 300, 100, 25)
	if c.Queuing != 200 || c.Total() != 375 {
		t.Errorf("Compose = %+v", c)
	}
	// R below C clamps queuing at zero rather than going negative.
	c = Compose(0, 50, 100, 0)
	if c.Queuing != 0 {
		t.Errorf("clamped queuing = %v, want 0", c.Queuing)
	}
}

func TestStreamValidate(t *testing.T) {
	bad := []Stream{
		{Name: "c", Ch: 0, D: 1, T: 1},
		{Name: "d", Ch: 1, D: 0, T: 1},
		{Name: "t", Ch: 1, D: 1, T: 0},
		{Name: "j", Ch: 1, D: 1, T: 1, J: -1},
	}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("stream %q must fail validation", s.Name)
		}
	}
	if (Stream{Name: "ok", Ch: 1, D: 1, T: 1}).Validate() != nil {
		t.Error("valid stream rejected")
	}
}
