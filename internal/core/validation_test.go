package core_test

// Cross-validation of the Section 3/4 message analyses against the
// bit-time-accurate PROFIBUS simulator: for every randomly generated
// network that the analysis declares schedulable, the simulated worst
// response must stay below the analytic bound and the observed token
// rotation below T_cycle. These tests are the in-tree versions of
// experiments E6/E7/E9/E10.

import (
	"math/rand"
	"testing"

	"profirt/internal/ap"
	"profirt/internal/core"
	"profirt/internal/fdl"
	"profirt/internal/profibus"
)

// buildScenario generates a random network plus the matching simulator
// configuration. All masters use the given dispatcher.
func buildScenario(rng *rand.Rand, dispatcher ap.Policy, ttr core.Ticks) (core.Network, profibus.Config) {
	bus := fdl.DefaultBusParams()
	bus.MaxRetry = 0 // deterministic cycle lengths unless faults injected

	nMasters := 2 + rng.Intn(2)
	net := core.Network{TTR: ttr, TokenPass: bus.TokenPassTicks()}
	cfg := profibus.Config{
		Bus:     bus,
		TTR:     ttr,
		Horizon: 600_000,
		Slaves:  []profibus.SlaveConfig{{Addr: 50, TSDR: bus.TSDRmax}},
		Jitter:  profibus.JitterAdversarial,
		Seed:    rng.Int63(),
	}
	for k := 0; k < nMasters; k++ {
		mc := profibus.MasterConfig{Addr: byte(k + 1), Dispatcher: dispatcher}
		cm := core.Master{Name: string(rune('A' + k))}
		nStreams := 1 + rng.Intn(3)
		for s := 0; s < nStreams; s++ {
			period := core.Ticks(20_000 + rng.Intn(60_000))
			deadline := period - core.Ticks(rng.Intn(int(period)/4))
			jitter := core.Ticks(rng.Intn(2_000))
			sc := profibus.StreamConfig{
				Name:      "s",
				Slave:     50,
				High:      true,
				Period:    period,
				Deadline:  deadline,
				Jitter:    jitter,
				Offset:    core.Ticks(rng.Intn(5_000)),
				ReqBytes:  rng.Intn(16),
				RespBytes: rng.Intn(16),
			}
			mc.Streams = append(mc.Streams, sc)
			cm.High = append(cm.High, core.Stream{
				Name: sc.Name,
				Ch:   sc.WorstCycleTicks(mc.Addr, bus),
				D:    deadline,
				T:    period,
				J:    jitter,
			})
		}
		net.Masters = append(net.Masters, cm)
		cfg.Masters = append(cfg.Masters, mc)
	}
	return net, cfg
}

func TestTokenCycleBoundsSimulatedRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		net, cfg := buildScenario(rng, ap.FCFS, 8_000)
		res, err := profibus.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bound := net.TokenCycle()
		if got := res.WorstTRR(); got > bound {
			t.Fatalf("trial %d: observed TRR %d > T_cycle bound %d", trial, got, bound)
		}
		// The refined bound must hold as well.
		if got := res.WorstTRR(); got > net.RefinedTokenCycle() {
			t.Fatalf("trial %d: observed TRR %d > refined bound %d",
				trial, got, net.RefinedTokenCycle())
		}
	}
}

func TestFCFSBoundVsSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	asserted := 0
	for trial := 0; trial < 30; trial++ {
		net, cfg := buildScenario(rng, ap.FCFS, 5_000)
		ok, verdicts := core.FCFSSchedulable(net)
		if !ok {
			continue // Eq. 11's one-pending-per-stream premise needs schedulability
		}
		res, err := profibus.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vi := 0
		for mi, m := range res.PerMaster {
			for si, st := range m.PerStream {
				bound := verdicts[vi].R
				vi++
				if st.WorstResponse > bound {
					t.Fatalf("trial %d master %d stream %d: simulated %d > Eq.11 bound %d",
						trial, mi, si, st.WorstResponse, bound)
				}
				if st.Missed > 0 {
					t.Fatalf("trial %d: deadline miss in an Eq.12-schedulable net", trial)
				}
				asserted++
			}
		}
	}
	if asserted == 0 {
		t.Error("no schedulable scenarios generated — test workload degenerate")
	}
}

func TestDMBoundVsSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	asserted := 0
	for trial := 0; trial < 30; trial++ {
		net, cfg := buildScenario(rng, ap.DM, 5_000)
		ok, verdicts := core.DMSchedulable(net, core.DMOptions{})
		if !ok {
			continue
		}
		res, err := profibus.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vi := 0
		for mi, m := range res.PerMaster {
			for si, st := range m.PerStream {
				bound := verdicts[vi].R
				vi++
				if st.WorstResponse > bound {
					t.Fatalf("trial %d master %d stream %d: simulated %d > revised Eq.16 bound %d",
						trial, mi, si, st.WorstResponse, bound)
				}
				if st.Missed > 0 {
					t.Fatalf("trial %d: deadline miss under schedulable DM verdicts", trial)
				}
				asserted++
			}
		}
	}
	if asserted == 0 {
		t.Error("no schedulable DM scenarios generated")
	}
}

func TestEDFBoundVsSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	asserted := 0
	for trial := 0; trial < 30; trial++ {
		net, cfg := buildScenario(rng, ap.EDF, 5_000)
		ok, verdicts := core.EDFSchedulableNet(net, core.EDFOptions{})
		if !ok {
			continue
		}
		res, err := profibus.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vi := 0
		for mi, m := range res.PerMaster {
			for si, st := range m.PerStream {
				bound := verdicts[vi].R
				vi++
				if st.WorstResponse > bound {
					t.Fatalf("trial %d master %d stream %d: simulated %d > Eq.17/18 bound %d",
						trial, mi, si, st.WorstResponse, bound)
				}
				asserted++
			}
		}
	}
	if asserted == 0 {
		t.Error("no schedulable EDF scenarios generated")
	}
}

// With fault injection within the modelled retry budget, the worst-case
// cycle lengths C_hi (which include MaxRetry failed attempts) must still
// bound behaviour for streams the analysis accepts.
func TestBoundsHoldUnderRetries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	asserted := 0
	for trial := 0; trial < 12; trial++ {
		net, cfg := buildScenario(rng, ap.FCFS, 6_000)
		// Rebuild Ch with one allowed retry and inject rare failures.
		cfg.Bus.MaxRetry = 1
		cfg.Faults.CycleFailProb = 0.05
		for k := range net.Masters {
			for s := range net.Masters[k].High {
				sc := cfg.Masters[k].Streams[s]
				net.Masters[k].High[s].Ch = sc.WorstCycleTicks(cfg.Masters[k].Addr, cfg.Bus)
			}
		}
		ok, verdicts := core.FCFSSchedulable(net)
		if !ok {
			continue
		}
		res, err := profibus.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vi := 0
		for _, m := range res.PerMaster {
			for _, st := range m.PerStream {
				bound := verdicts[vi].R
				vi++
				if st.WorstResponse > bound {
					t.Fatalf("trial %d: simulated %d > bound %d under retries",
						trial, st.WorstResponse, bound)
				}
				asserted++
			}
		}
		if res.WorstTRR() > net.TokenCycle() {
			t.Fatalf("trial %d: rotation bound violated under retries", trial)
		}
	}
	if asserted == 0 {
		t.Skip("no schedulable scenarios under retry-inflated cycles")
	}
}
