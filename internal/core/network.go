// Package core implements the paper's primary contribution: the
// pre-run-time schedulability analysis of message streams in a PROFIBUS
// network, for the stock FCFS outgoing queue (Section 3: Eqs. 11–15)
// and for the proposed application-process priority-queue architecture
// under deadline-monotonic and earliest-deadline-first dispatching
// (Section 4: Eqs. 16–18), plus the end-to-end delay composition of
// Section 4.2.
//
// The model quantities follow the paper's notation:
//
//	C_hi^k — worst-case length of a message cycle of stream S_hi^k
//	         (request + response + turnaround + allowed retries)
//	Cl^k   — longest low-priority message cycle of master k
//	C_M^k  — longest message cycle of master k (Eq. 13's summand)
//	T_del  — worst-case token lateness (Eq. 13)
//	T_cycle — upper bound between consecutive token arrivals (Eq. 14)
package core

import (
	"errors"
	"fmt"

	"profirt/internal/timeunit"
)

// Ticks aliases the shared time base (bit times).
type Ticks = timeunit.Ticks

// Stream is one high-priority message stream of a master: the paper's
// S_hi^k with worst-case message cycle length Ch (C_hi^k), relative
// deadline D, minimum inter-release time T and release jitter J
// inherited from the generating task (Sec. 4.1).
type Stream struct {
	Name string
	Ch   Ticks
	D    Ticks
	T    Ticks
	J    Ticks
}

// Validate reports structural problems.
func (s Stream) Validate() error {
	switch {
	case s.Ch <= 0:
		return fmt.Errorf("core: stream %q: Ch must be positive", s.Name)
	case s.D <= 0:
		return fmt.Errorf("core: stream %q: D must be positive", s.Name)
	case s.T <= 0:
		return fmt.Errorf("core: stream %q: T must be positive", s.Name)
	case s.J < 0:
		return fmt.Errorf("core: stream %q: J must be non-negative", s.Name)
	}
	return nil
}

// Master is one master station's traffic: its high-priority streams and
// the longest low-priority message cycle it may start (0 if it carries
// no low-priority traffic).
type Master struct {
	Name       string
	High       []Stream
	LongestLow Ticks
}

// NH returns nh^k, the number of high-priority message streams.
func (m Master) NH() int { return len(m.High) }

// LongestHigh returns max_i C_hi^k (0 with no high streams).
func (m Master) LongestHigh() Ticks {
	var w Ticks
	for _, s := range m.High {
		if s.Ch > w {
			w = s.Ch
		}
	}
	return w
}

// LongestCycle returns C_M^k = max{max_i Ch_i^k, Cl^k}, the longest
// message cycle the master can start (Eq. 13's per-master term).
func (m Master) LongestCycle() Ticks {
	return timeunit.Max(m.LongestHigh(), m.LongestLow)
}

// Network is a PROFIBUS configuration under analysis: the ring's
// masters and the common target token rotation time T_TR. TokenPass
// optionally accounts for the token-passing overhead per hop (the
// paper's footnote-7 "ring latency and other protocol overheads");
// the literal Eq. 13/14 ignore it (set 0 for the paper-exact bound).
type Network struct {
	TTR       Ticks
	Masters   []Master
	TokenPass Ticks
	// GapPoll is the worst-case duration of one ring-maintenance
	// FDL-Status poll (0 when GAP maintenance is disabled). A master
	// can start a poll with marginal token-holding time left exactly
	// like a message cycle, so each master's lateness contribution is
	// max(C_M^k, GapPoll).
	GapPoll Ticks
}

// Validate reports structural problems.
func (n Network) Validate() error {
	if len(n.Masters) == 0 {
		return errors.New("core: network has no masters")
	}
	if n.TTR <= 0 {
		return errors.New("core: TTR must be positive")
	}
	if n.TokenPass < 0 {
		return errors.New("core: TokenPass must be non-negative")
	}
	if n.GapPoll < 0 {
		return errors.New("core: GapPoll must be non-negative")
	}
	for _, m := range n.Masters {
		for _, s := range m.High {
			if err := s.Validate(); err != nil {
				return err
			}
		}
		if m.LongestLow < 0 {
			return fmt.Errorf("core: master %q: LongestLow must be non-negative", m.Name)
		}
	}
	return nil
}

// TokenDelay evaluates the paper's Eq. 13: the worst-case token
// lateness T_del = Σ_k C_M^k — master k overruns its token-holding
// time by its longest cycle and every following master, receiving a
// late token, still transmits one message. The per-hop token-passing
// overhead (when configured) is added once per master, since a full
// delayed rotation traverses every hop.
func (n Network) TokenDelay() Ticks {
	var d Ticks
	for _, m := range n.Masters {
		d = timeunit.AddSat(d, timeunit.Max(m.LongestCycle(), n.GapPoll))
	}
	d = timeunit.AddSat(d, timeunit.MulSat(Ticks(len(n.Masters)), n.TokenPass))
	return d
}

// RefinedTokenDelay evaluates the tighter bound the paper attributes to
// [14]: only one master can be the T_TH overrunner (contributing its
// longest cycle of either class); every other master, holding a late
// token, transmits at most one *high-priority* message. The result is
// max over the choice of overrunner.
func (n Network) RefinedTokenDelay() Ticks {
	if len(n.Masters) == 0 {
		return 0
	}
	// Σ_j CHmax^j precomputed; swap each candidate overrunner in turn.
	var sumHigh Ticks
	for _, m := range n.Masters {
		sumHigh = timeunit.AddSat(sumHigh, m.LongestHigh())
	}
	var best Ticks
	for _, m := range n.Masters {
		d := timeunit.AddSat(sumHigh-m.LongestHigh(),
			timeunit.Max(m.LongestCycle(), n.GapPoll))
		if d > best {
			best = d
		}
	}
	best = timeunit.AddSat(best, timeunit.MulSat(Ticks(len(n.Masters)), n.TokenPass))
	return best
}

// TokenCycle evaluates Eq. 14: T_cycle = T_TR + T_del, the upper bound
// on the time between consecutive token arrivals at any master.
func (n Network) TokenCycle() Ticks {
	return timeunit.AddSat(n.TTR, n.TokenDelay())
}

// RefinedTokenCycle is TokenCycle with the refined lateness bound.
func (n Network) RefinedTokenCycle() Ticks {
	return timeunit.AddSat(n.TTR, n.RefinedTokenDelay())
}
