package profirt_test

// The reproduction bench harness: one benchmark per experiment E1–E12
// (DESIGN.md §4). Each BenchmarkE<n> regenerates its experiment's
// table(s); run with -v to see them (logged once per benchmark). The
// remaining benchmarks measure the cost of the analyses and substrates
// themselves.
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"profirt"
	"profirt/internal/ap"
	"profirt/internal/experiments"
	"profirt/internal/fdl"
	"profirt/internal/profibus"
	"profirt/internal/sched"
	"profirt/internal/workload"
)

// benchExperiment runs one experiment per iteration and logs its tables
// once, so `go test -bench BenchmarkE7 -v` regenerates the E7 table.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiments.QuickConfig()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if i == 0 {
			var sb strings.Builder
			for _, t := range tables {
				sb.WriteString("\n")
				sb.WriteString(t.String())
			}
			b.Log(sb.String())
		}
	}
}

func BenchmarkE1FixedPriorityPreemptive(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2FixedPriorityNonPreemptive(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3EDFDemand(b *testing.B)                  { benchExperiment(b, "E3") }
func BenchmarkE4NonPreemptiveEDFTests(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5EDFResponseTimes(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6TokenCycleBound(b *testing.B)            { benchExperiment(b, "E6") }
func BenchmarkE7FCFSBound(b *testing.B)                  { benchExperiment(b, "E7") }
func BenchmarkE8TTRSetting(b *testing.B)                 { benchExperiment(b, "E8") }
func BenchmarkE9DMMessageRTA(b *testing.B)               { benchExperiment(b, "E9") }
func BenchmarkE10EDFMessageRTA(b *testing.B)             { benchExperiment(b, "E10") }
func BenchmarkE11PolicyComparison(b *testing.B)          { benchExperiment(b, "E11") }
func BenchmarkE12JitterEndToEnd(b *testing.B)            { benchExperiment(b, "E12") }
func BenchmarkE13Holistic(b *testing.B)                  { benchExperiment(b, "E13") }

// benchAllExperiments runs the full E1–E13 suite once per iteration
// with the given grid-cell worker-pool size. Compare the Sequential and
// Parallel variants to see the multi-core speedup of the cell-job
// harness; the produced tables are byte-identical in both.
func benchAllExperiments(b *testing.B, parallelism int) {
	cfg := experiments.QuickConfig()
	cfg.Parallelism = parallelism
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			e.Run(cfg)
		}
	}
}

func BenchmarkAllExperimentsSequential(b *testing.B) { benchAllExperiments(b, 1) }
func BenchmarkAllExperimentsParallel(b *testing.B) {
	benchAllExperiments(b, runtime.GOMAXPROCS(0))
}

// benchBatchNets draws the network population for the AnalyzeBatch
// benchmarks.
func benchBatchNets(n int) []profirt.Network {
	rng := rand.New(rand.NewSource(11))
	p := workload.DefaultStreamSetParams()
	p.Masters, p.StreamsPerMaster = 4, 4
	nets := make([]profirt.Network, n)
	for i := range nets {
		nets[i], _ = workload.StreamSet(rng, p)
	}
	return nets
}

func benchAnalyzeBatch(b *testing.B, parallelism int) {
	nets := benchBatchNets(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: parallelism})
	}
}

func BenchmarkAnalyzeBatchSequential(b *testing.B) { benchAnalyzeBatch(b, 1) }
func BenchmarkAnalyzeBatchParallel(b *testing.B)   { benchAnalyzeBatch(b, runtime.GOMAXPROCS(0)) }

// The cached-analysis pair measures the content-addressed memo table
// on a repeated-network batch (every net appears twice). Cold builds a
// fresh cache per iteration, so it pays the full fixed-point cost plus
// hashing; Warm reuses a populated cache, so every DM/EDF analysis is
// a lookup. Their ratio is the headline speedup tracked in
// BENCH_results.json (the acceptance bar is ≥ 2x; see also
// TestCachedWarmSpeedup, which asserts it functionally).
func benchCachedNets() []profirt.Network {
	nets := benchBatchNets(128)
	return append(nets, nets...)
}

func BenchmarkAnalyzeCachedCold(b *testing.B) {
	nets := benchCachedNets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profirt.AnalyzeBatch(nets, profirt.BatchOptions{
			Parallelism: 1, Cache: profirt.NewAnalysisCache(0),
		})
	}
}

func BenchmarkAnalyzeCachedWarm(b *testing.B) {
	nets := benchCachedNets()
	cache := profirt.NewAnalysisCache(0)
	profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: 1, Cache: cache})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: 1, Cache: cache})
	}
}

// benchEngineObs measures the Engine's per-call observability cost on
// a warm-cache AnalyzeNetworks batch — the hottest instrumented path,
// where every job records a run-time histogram sample and every memo
// probe is timed. On and Off differ only in WithObservability; the
// bench guard (cmd/benchjson) enforces at most 5% ns/op overhead and
// zero extra allocs/op between the pair, within the same run.
func benchEngineObs(b *testing.B, enabled bool) {
	nets := benchCachedNets()
	eng := profirt.NewEngine(
		profirt.WithParallelism(1),
		profirt.WithCache(profirt.NewAnalysisCache(0)),
		profirt.WithObservability(enabled),
	)
	defer eng.Close()
	ctx := context.Background()
	if _, err := eng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineObsOn(b *testing.B)  { benchEngineObs(b, true) }
func BenchmarkEngineObsOff(b *testing.B) { benchEngineObs(b, false) }

// BenchmarkAllExperimentsCached tracks the cache's effect on the full
// E1–E13 quick suite (compare against BenchmarkAllExperimentsParallel).
// One warm-up pass populates the cache before the timer starts so the
// measurement is a steady-state warm number independent of b.N.
func BenchmarkAllExperimentsCached(b *testing.B) {
	cfg := experiments.QuickConfig()
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	cfg.Cache = profirt.NewAnalysisCache(0)
	for _, e := range experiments.All() {
		e.Run(cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			e.Run(cfg)
		}
	}
}

// --- batch simulation + campaign benchmarks ---

// benchSimConfigs draws the simulator population for the SimulateBatch
// pair: many small independent networks with random jitter active, so
// the per-run seed derivation is on the measured path.
func benchSimConfigs(n int) []profirt.SimConfig {
	rng := rand.New(rand.NewSource(17))
	p := workload.DefaultStreamSetParams()
	p.Masters, p.StreamsPerMaster = 2, 3
	p.MaxJitter = 1_000
	cfgs := make([]profirt.SimConfig, n)
	for i := range cfgs {
		_, cfg := workload.StreamSet(rng, p)
		cfg.Horizon = 200_000
		cfgs[i] = cfg
	}
	return cfgs
}

func benchSimulateBatch(b *testing.B, parallelism int) {
	cfgs := benchSimConfigs(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := profirt.SimulateBatch(cfgs, profirt.SimBatchOptions{Parallelism: parallelism, Seed: 5})
		for _, r := range out {
			if r.Err != nil || r.Skipped {
				b.Fatalf("run %d: err=%v skip=%v", r.Index, r.Err, r.Skipped)
			}
		}
	}
}

func BenchmarkSimulateBatchSequential(b *testing.B) { benchSimulateBatch(b, 1) }
func BenchmarkSimulateBatchParallel(b *testing.B) {
	benchSimulateBatch(b, runtime.GOMAXPROCS(0))
}

// benchCampaign compiles the examples/campaign manifest — the same
// grid the CI smoke step and the walkthrough run.
func benchCampaign(b *testing.B) *profirt.Campaign {
	c, err := profirt.LoadCampaign("examples/campaign/manifest.json")
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkCampaignColdStore measures a full campaign against a fresh
// store: every job simulated and written through. Compare with
// WarmResume below — their ratio is the warm-start speedup recorded in
// BENCH_results.json (acceptance bar: warm measurably faster).
func BenchmarkCampaignColdStore(b *testing.B) {
	c := benchCampaign(b)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		path := filepath.Join(dir, fmt.Sprintf("cold-%d.jsonl", i))
		store, err := profirt.OpenResultStore(path, c.Hash[:])
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := c.Run(profirt.CampaignRunOptions{Store: store})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if res.Executed != res.Jobs {
			b.Fatalf("cold run executed %d of %d", res.Executed, res.Jobs)
		}
		store.Close()
		b.StartTimer()
	}
}

// BenchmarkCampaignWarmResume measures the same campaign against a
// store that already holds every result: pure restore + reduce.
func BenchmarkCampaignWarmResume(b *testing.B) {
	c := benchCampaign(b)
	path := filepath.Join(b.TempDir(), "warm.jsonl")
	store, err := profirt.OpenResultStore(path, c.Hash[:])
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	if _, err := c.Run(profirt.CampaignRunOptions{Store: store}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Run(profirt.CampaignRunOptions{Store: store})
		if err != nil {
			b.Fatal(err)
		}
		if res.Restored != res.Jobs {
			b.Fatalf("warm run restored %d of %d", res.Restored, res.Jobs)
		}
	}
}

// --- Engine concurrent-caller benchmarks ---

// benchEngineConcurrentCallers measures M concurrent batch submitters
// hammering the simulation layer. The Shared variant routes all of
// them through ONE Engine — one bounded pool, round-robin admission —
// so the process runs at most the pool width in workers no matter how
// many callers pile on. The Legacy variant reproduces the pre-Engine
// behaviour: every call spins its own full-width pool, so M callers
// oversubscribe the machine M-fold. The pool width is pinned (not
// GOMAXPROCS) so the contrast is visible on any host, including
// single-core CI runners; the peak-goroutines metric records it in
// BENCH_results.json: ~width + M submitters for Shared versus
// ~M×width for Legacy. The results are byte-identical either way.
func benchEngineConcurrentCallers(b *testing.B, shared bool) {
	const width = 4
	cfgs := benchSimConfigs(24)
	const callers = 6
	var eng *profirt.Engine
	if shared {
		eng = profirt.NewEngine(profirt.WithParallelism(width))
		defer eng.Close()
	}
	var peak atomic.Int64
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g := int64(runtime.NumGoroutine()); g > peak.Load() {
				peak.Store(g)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var out []profirt.SimBatchResult
				if shared {
					var err error
					out, err = eng.SimulateBatch(context.Background(), cfgs, profirt.SimulateOptions{Seed: 5})
					if err != nil {
						b.Error(err)
						return
					}
				} else {
					// The internal batch runner with no shared pool: a
					// per-call width-sized worker set, exactly the
					// pre-Engine SimulateBatch.
					out = profibus.SimulateBatch(cfgs, profibus.BatchOptions{Seed: 5, Parallelism: width})
				}
				for _, r := range out {
					if r.Err != nil || r.Skipped {
						b.Errorf("run %d: err=%v skip=%v", r.Index, r.Err, r.Skipped)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	close(stop)
	sampler.Wait()
	b.ReportMetric(float64(peak.Load()), "peak-goroutines")
}

func BenchmarkEngineConcurrentCallersShared(b *testing.B) {
	benchEngineConcurrentCallers(b, true)
}

func BenchmarkEngineConcurrentCallersLegacy(b *testing.B) {
	benchEngineConcurrentCallers(b, false)
}

// --- substrate micro-benchmarks ---

func benchTaskSet(n int) sched.TaskSet {
	rng := rand.New(rand.NewSource(7))
	return sched.SortDM(workload.TaskSet(rng, workload.DefaultTaskSetParams(n, 0.7)))
}

func BenchmarkRTAFixedPriorityPreemptive(b *testing.B) {
	ts := benchTaskSet(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.ResponseTimesFP(ts, sched.FPOptions{Preemptive: true})
	}
}

func BenchmarkRTAFixedPriorityNonPreemptive(b *testing.B) {
	ts := benchTaskSet(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.ResponseTimesFP(ts, sched.FPOptions{})
	}
}

func BenchmarkEDFDemandTest(b *testing.B) {
	ts := benchTaskSet(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.EDFFeasiblePreemptive(ts)
	}
}

func BenchmarkEDFResponseTimesPreemptive(b *testing.B) {
	ts := benchTaskSet(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.ResponseTimesEDFPreemptive(ts, sched.EDFOptions{})
	}
}

func BenchmarkEDFResponseTimesNonPreemptive(b *testing.B) {
	ts := benchTaskSet(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.ResponseTimesEDFNonPreemptive(ts, sched.EDFOptions{})
	}
}

func benchStreams(n int) []profirt.Stream {
	rng := rand.New(rand.NewSource(3))
	streams := make([]profirt.Stream, n)
	for i := range streams {
		T := profirt.Ticks(50_000 + rng.Intn(200_000))
		streams[i] = profirt.Stream{
			Name: "s", Ch: 400, D: T - profirt.Ticks(rng.Intn(10_000)), T: T,
			J: profirt.Ticks(rng.Intn(2_000)),
		}
	}
	return streams
}

func BenchmarkDMMessageRTA(b *testing.B) {
	streams := benchStreams(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profirt.DMResponseTimes(streams, 2_500, profirt.DMMessageOptions{})
	}
}

func BenchmarkEDFMessageRTA(b *testing.B) {
	streams := benchStreams(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profirt.EDFMessageResponseTimes(streams, 2_500, profirt.EDFMessageOptions{})
	}
}

func BenchmarkProfibusSimulator(b *testing.B) {
	_, cfg := workload.DCCSCell(ap.DM, 1_000)
	cfg.Horizon = 1_000_000
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := profibus.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range res.PerMaster {
			cycles += m.HighCycles + m.LowCycles
		}
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
}

func BenchmarkCPUSimulator(b *testing.B) {
	ts := benchTaskSet(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profirt.SimulateCPU(ts, profirt.CPUSimOptions{
			Policy: profirt.EDFPreemptive, Horizon: 1 << 16,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameEncodeDecode(b *testing.B) {
	f := fdl.Frame{Kind: fdl.KindSD2, DA: 9, SA: 1,
		FC: fdl.ReqFC(fdl.FnSRDhigh, true, true), Data: make([]byte, 32)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := f.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := fdl.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPQueue(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]ap.Request, 256)
	for i := range reqs {
		r := profirt.Ticks(rng.Intn(100_000))
		reqs[i] = ap.Request{
			Stream: i, Release: r, Ready: r,
			RelDeadline: profirt.Ticks(1 + rng.Intn(50_000)),
			AbsDeadline: r + profirt.Ticks(1+rng.Intn(50_000)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ap.NewQueue(ap.EDF)
		for _, r := range reqs {
			q.Push(r)
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}
