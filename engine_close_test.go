package profirt_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"profirt"
)

// These tests pin the Engine lifecycle contract the serving layer
// depends on: Close drains in-flight calls instead of yanking the pool
// from under them (the old behaviour panicked inside pool.RunContext),
// late submissions get ErrEngineClosed, and double-Close is a no-op.
// Run under -race (make ci) this file is the data-race gate for
// submit-during-Close.

// TestEngineCloseRejectsNewCalls: every method on a closed Engine
// returns ErrEngineClosed — no panic, no pool interaction.
func TestEngineCloseRejectsNewCalls(t *testing.T) {
	eng := profirt.NewEngine(profirt.WithParallelism(2))
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.AnalyzeNetworks(ctx, nil, profirt.AnalyzeOptions{}); !errors.Is(err, profirt.ErrEngineClosed) {
		t.Fatalf("AnalyzeNetworks after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.AnalyzeTopologies(ctx, nil, profirt.TopologyAnalyzeOptions{}); !errors.Is(err, profirt.ErrEngineClosed) {
		t.Fatalf("AnalyzeTopologies after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.AnalyzeHolistic(ctx, profirt.HolisticConfig{}); !errors.Is(err, profirt.ErrEngineClosed) {
		t.Fatalf("AnalyzeHolistic after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Simulate(ctx, profirt.SimConfig{}); !errors.Is(err, profirt.ErrEngineClosed) {
		t.Fatalf("Simulate after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.SimulateBatch(ctx, nil, profirt.SimulateOptions{}); !errors.Is(err, profirt.ErrEngineClosed) {
		t.Fatalf("SimulateBatch after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.SimulateTopology(ctx, profirt.SimTopology{}, profirt.TopologySimulateOptions{}); !errors.Is(err, profirt.ErrEngineClosed) {
		t.Fatalf("SimulateTopology after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.RunCampaign(ctx, nil, profirt.CampaignOptions{}); !errors.Is(err, profirt.ErrEngineClosed) {
		t.Fatalf("RunCampaign after Close: err = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.RunExperiments(ctx, nil, profirt.ExperimentOptions{}); !errors.Is(err, profirt.ErrEngineClosed) {
		t.Fatalf("RunExperiments after Close: err = %v, want ErrEngineClosed", err)
	}
	// Stats stays callable on a closed Engine (a draining server's last
	// metrics scrape).
	if st := eng.Stats(); !st.Closed || !st.Pool.Closed {
		t.Fatalf("Stats after Close: %+v, want Closed", st)
	}
}

// TestEngineDoubleCloseIdempotent: any number of Closes, from any
// number of goroutines, all return nil.
func TestEngineDoubleCloseIdempotent(t *testing.T) {
	eng := profirt.NewEngine(profirt.WithParallelism(1))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := eng.Close(); err != nil {
				t.Errorf("concurrent Close returned %v", err)
			}
		}()
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatalf("Close after Close returned %v", err)
	}
}

// TestEngineSubmitDuringClose is the regression for the shutdown
// panic: many goroutines hammer AnalyzeNetworks and SimulateBatch
// while another calls Close concurrently. Every call must either
// complete with full, correct results (admitted before Close) or fail
// with ErrEngineClosed — never panic, never return partial output.
func TestEngineSubmitDuringClose(t *testing.T) {
	nets := equivNets(163, 12, 2)
	cfgs := equivSimConfigs(167, 6)
	wantNets := profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: 1})
	wantSims := profirt.SimulateBatch(cfgs, profirt.SimBatchOptions{Parallelism: 1, Seed: 11})

	for round := 0; round < 8; round++ {
		eng := profirt.NewEngine(profirt.WithParallelism(2))
		const callers = 8
		start := make(chan struct{})
		errs := make([]error, callers)
		var wg sync.WaitGroup
		for w := 0; w < callers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if w%2 == 0 {
					got, err := eng.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{})
					if err == nil && !reflect.DeepEqual(got, wantNets) {
						errs[w] = errAdmittedButWrong
					} else if err != nil && !errors.Is(err, profirt.ErrEngineClosed) {
						errs[w] = err
					}
				} else {
					got, err := eng.SimulateBatch(context.Background(), cfgs, profirt.SimulateOptions{Seed: 11})
					if err == nil && !reflect.DeepEqual(got, wantSims) {
						errs[w] = errAdmittedButWrong
					} else if err != nil && !errors.Is(err, profirt.ErrEngineClosed) {
						errs[w] = err
					}
				}
			}()
		}
		closed := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			closed <- eng.Close()
		}()
		close(start)
		wg.Wait()
		if err := <-closed; err != nil {
			t.Fatalf("round %d: Close returned %v", round, err)
		}
		for w, err := range errs {
			if err != nil {
				t.Fatalf("round %d caller %d: %v", round, w, err)
			}
		}
	}
}

var errAdmittedButWrong = errors.New("call admitted before Close returned wrong results")

// TestEngineStatsCounts: the per-op counters and pool counters move
// when methods run.
func TestEngineStatsCounts(t *testing.T) {
	nets := equivNets(173, 6, 2)
	eng := profirt.NewEngine(profirt.WithParallelism(2), profirt.WithCache(profirt.NewAnalysisCache(0)))
	defer eng.Close()
	if st := eng.Stats(); st.Ops.AnalyzeNetworks != 0 || st.Pool.Workers != 2 || st.Closed {
		t.Fatalf("fresh Engine stats: %+v", st)
	}
	if _, err := eng.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Ops.AnalyzeNetworks != 2 {
		t.Fatalf("AnalyzeNetworks counter = %d, want 2", st.Ops.AnalyzeNetworks)
	}
	if st.Pool.Jobs == 0 || st.Pool.Submissions == 0 {
		t.Fatalf("pool counters never moved: %+v", st.Pool)
	}
	if st.InFlightCalls != 0 {
		t.Fatalf("InFlightCalls = %d after calls returned", st.InFlightCalls)
	}
	if st.Cache.Misses == 0 {
		t.Fatalf("cache stats never moved: %+v", st.Cache)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("repeated batch produced no cache hits: %+v", st.Cache)
	}
}
