package profirt_test

import (
	"math/rand"
	"testing"

	"profirt"
)

// This file holds the safety property the whole repository rests on:
// for any network the simulator can execute, the analytic DM/EDF
// worst-case response-time bound must never fall below the simulator's
// observed worst case. The networks are drawn from a seeded generator
// and the check is table-driven over (seed, dispatcher, jitter mode),
// so a regression in either the analyses or the simulator reproduces
// deterministically.

// randomSimConfig draws a small but varied single-segment network: 1–3
// masters, 1–3 high-priority streams each (plus an occasional
// low-priority stream), random payloads, periods, deadlines and release
// jitter.
func randomSimConfig(rng *rand.Rand, dispatcher profirt.QueuePolicy, jitter profirt.SimConfig) profirt.SimConfig {
	cfg := jitter
	cfg.Bus = profirt.DefaultBusParams()
	cfg.TTR = 1_000 + profirt.Ticks(rng.Int63n(4_000))
	cfg.Horizon = 500_000
	cfg.Slaves = []profirt.SimSlaveConfig{{Addr: 30, TSDR: 11 + profirt.Ticks(rng.Int63n(50))}}
	periods := []profirt.Ticks{10_000, 20_000, 40_000, 80_000}
	nMasters := 1 + rng.Intn(3)
	for mi := 0; mi < nMasters; mi++ {
		mc := profirt.SimMasterConfig{Addr: byte(mi + 1), Dispatcher: dispatcher}
		nStreams := 1 + rng.Intn(3)
		for si := 0; si < nStreams; si++ {
			p := periods[rng.Intn(len(periods))]
			d := p/2 + profirt.Ticks(rng.Int63n(int64(p/2)+1))
			mc.Streams = append(mc.Streams, profirt.SimStreamConfig{
				Name:      "s",
				Slave:     30,
				High:      true,
				Period:    p,
				Deadline:  d,
				Jitter:    profirt.Ticks(rng.Int63n(600)),
				Offset:    profirt.Ticks(rng.Int63n(2_000)),
				ReqBytes:  rng.Intn(17),
				RespBytes: rng.Intn(17),
			})
		}
		if rng.Intn(2) == 0 {
			mc.Streams = append(mc.Streams, profirt.SimStreamConfig{
				Name:     "low",
				Slave:    30,
				High:     false,
				Period:   100_000,
				Deadline: 100_000,
				ReqBytes: rng.Intn(33),
			})
		}
		cfg.Masters = append(cfg.Masters, mc)
	}
	return cfg
}

// analyticBounds runs the dispatcher-matching analysis and returns the
// per-stream bounds in master order then high-stream order.
func analyticBounds(t *testing.T, net profirt.Network, dispatcher profirt.QueuePolicy) []profirt.StreamVerdict {
	t.Helper()
	var verdicts []profirt.StreamVerdict
	switch dispatcher {
	case profirt.DM:
		_, verdicts = profirt.DMSchedulable(net, profirt.DMMessageOptions{})
	case profirt.EDF:
		_, verdicts = profirt.EDFSchedulableNet(net, profirt.EDFMessageOptions{})
	default:
		t.Fatalf("unsupported dispatcher %v", dispatcher)
	}
	return verdicts
}

// TestAnalysisNeverBelowSimulation is the cross-validation property
// test: across randomized networks, dispatchers and jitter
// realisations, every finite analytic bound must dominate the simulated
// worst case of its stream (censored requests included — a pending
// request's horizon − release is a lower bound on its true response).
func TestAnalysisNeverBelowSimulation(t *testing.T) {
	finite := 0
	for _, dispatcher := range []profirt.QueuePolicy{profirt.DM, profirt.EDF} {
		for _, jm := range []struct {
			name string
			mode profirt.SimConfig
		}{
			{"none", profirt.SimConfig{}},
			{"random", profirt.SimConfig{Jitter: profirt.SimJitterRandom}},
			{"adversarial", profirt.SimConfig{Jitter: profirt.SimJitterAdversarial}},
		} {
			for seed := int64(1); seed <= 12; seed++ {
				rng := rand.New(rand.NewSource(seed * 7919))
				cfg := randomSimConfig(rng, dispatcher, jm.mode)
				cfg.Seed = seed
				net := profirt.NetworkFromSimConfig(cfg)
				verdicts := analyticBounds(t, net, dispatcher)
				res, err := profirt.Simulate(cfg)
				if err != nil {
					t.Fatalf("%v/%s/seed %d: %v", dispatcher, jm.name, seed, err)
				}
				vi := 0
				for mi, m := range res.PerMaster {
					for si, st := range m.PerStream {
						if !cfg.Masters[mi].Streams[si].High {
							continue
						}
						bound := verdicts[vi].R
						vi++
						if bound == profirt.MaxTicks {
							continue
						}
						finite++
						if st.WorstResponse > bound {
							t.Errorf("%v/%s/seed %d: master %d stream %d observed %v > analytic bound %v",
								dispatcher, jm.name, seed, mi, si, st.WorstResponse, bound)
						}
					}
				}
				if vi != len(verdicts) {
					t.Fatalf("verdict/stream mismatch: walked %d of %d", vi, len(verdicts))
				}
			}
		}
	}
	// The property is vacuous if every bound diverges; the generator is
	// tuned so most draws stay analysable.
	if finite < 100 {
		t.Fatalf("only %d finite analytic bounds across the population; generator degenerated", finite)
	}
}
