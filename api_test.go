package profirt_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"profirt"
	"profirt/internal/workload"
)

// demoConfig builds a small two-master network through the public API.
func demoConfig() profirt.SimConfig {
	return profirt.SimConfig{
		Bus: profirt.DefaultBusParams(),
		TTR: 2_000,
		Masters: []profirt.SimMasterConfig{
			{
				Addr:       1,
				Dispatcher: profirt.DM,
				Streams: []profirt.SimStreamConfig{
					{Name: "loop", Slave: 30, High: true, Period: 20_000, Deadline: 15_000, ReqBytes: 2, RespBytes: 4},
					{Name: "bg", Slave: 30, High: false, Period: 100_000, Deadline: 100_000, ReqBytes: 8, RespBytes: 8},
				},
			},
			{
				Addr:       2,
				Dispatcher: profirt.DM,
				Streams: []profirt.SimStreamConfig{
					{Name: "poll", Slave: 30, High: true, Period: 40_000, Deadline: 30_000, ReqBytes: 4, RespBytes: 4},
				},
			},
		},
		Slaves:  []profirt.SimSlaveConfig{{Addr: 30, TSDR: 30}},
		Horizon: 400_000,
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	cfg := demoConfig()
	net := profirt.NetworkFromSimConfig(cfg)
	if len(net.Masters) != 2 {
		t.Fatalf("masters = %d, want 2", len(net.Masters))
	}
	if net.Masters[0].NH() != 1 || net.Masters[0].LongestLow == 0 {
		t.Error("master 1 model wrong")
	}
	if net.TokenPass == 0 {
		t.Error("token-pass overhead missing")
	}

	okDM, verdicts := profirt.DMSchedulable(net, profirt.DMMessageOptions{})
	if !okDM {
		t.Fatalf("demo network should be DM-schedulable: %+v", verdicts)
	}

	res, err := profirt.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vi := 0
	for mi, m := range res.PerMaster {
		for si, st := range m.PerStream {
			if !cfg.Masters[mi].Streams[si].High {
				continue
			}
			if st.WorstResponse > verdicts[vi].R {
				t.Errorf("stream %s: simulated %v > bound %v",
					verdicts[vi].Stream, st.WorstResponse, verdicts[vi].R)
			}
			vi++
		}
	}
}

func TestFacadeTaskAnalysis(t *testing.T) {
	ts := profirt.TaskSet{
		{Name: "a", C: 3, D: 7, T: 7},
		{Name: "b", C: 3, D: 12, T: 12},
		{Name: "c", C: 5, D: 20, T: 20},
	}
	ts = profirt.SortDM(ts)
	ok, rs := profirt.FPSchedulable(ts, profirt.FPOptions{Preemptive: true})
	if !ok || rs[2] != 20 {
		t.Errorf("classic set: ok=%v rs=%v", ok, rs)
	}
	if !profirt.EDFFeasiblePreemptive(ts).Feasible {
		t.Error("classic set must be EDF-feasible")
	}
	res, err := profirt.SimulateCPU(ts, profirt.CPUSimOptions{Policy: profirt.FPPreemptive})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerTask[2].WorstResponse != 20 {
		t.Errorf("simulated worst = %v, want 20", res.PerTask[2].WorstResponse)
	}
	if profirt.LiuLaylandBound(1) != 1 {
		t.Error("LL(1) must be 1")
	}
}

// batchNets draws a deterministic population of analytic networks.
func batchNets(t *testing.T, n int) []profirt.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	p := workload.DefaultStreamSetParams()
	nets := make([]profirt.Network, n)
	for i := range nets {
		nets[i], _ = workload.StreamSet(rng, p)
	}
	return nets
}

func TestAnalyzeBatchMatchesIndividual(t *testing.T) {
	nets := batchNets(t, 20)
	got := profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: 4})
	if len(got) != len(nets) {
		t.Fatalf("results = %d, want %d", len(got), len(nets))
	}
	for i, r := range got {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if r.Skipped {
			t.Errorf("result %d skipped without cancellation", i)
		}
		okF, vF := profirt.FCFSSchedulable(nets[i])
		okD, vD := profirt.DMSchedulable(nets[i], profirt.DMMessageOptions{})
		okE, vE := profirt.EDFSchedulableNet(nets[i], profirt.EDFMessageOptions{})
		if r.FCFS.Schedulable != okF || !reflect.DeepEqual(r.FCFS.Verdicts, vF) {
			t.Errorf("net %d: FCFS batch verdict diverges from FCFSSchedulable", i)
		}
		if r.DM.Schedulable != okD || !reflect.DeepEqual(r.DM.Verdicts, vD) {
			t.Errorf("net %d: DM batch verdict diverges from DMSchedulable", i)
		}
		if r.EDF.Schedulable != okE || !reflect.DeepEqual(r.EDF.Verdicts, vE) {
			t.Errorf("net %d: EDF batch verdict diverges from EDFSchedulableNet", i)
		}
	}
}

func TestAnalyzeBatchDeterministicAcrossParallelism(t *testing.T) {
	nets := batchNets(t, 30)
	seq := profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: 1})
	par := profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: 8})
	if !reflect.DeepEqual(seq, par) {
		t.Error("sequential and 8-worker batches disagree")
	}
}

func TestAnalyzeBatchCancellation(t *testing.T) {
	nets := batchNets(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range profirt.AnalyzeBatch(nets, profirt.BatchOptions{Context: ctx}) {
		if !r.Skipped {
			t.Errorf("net %d evaluated despite cancelled context", i)
		}
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
	}
}

func TestAnalyzeBatchEmpty(t *testing.T) {
	if got := profirt.AnalyzeBatch(nil, profirt.BatchOptions{}); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

// demoTopology couples two copies of the demo network through one
// bridge relaying master 1's "loop" stream onto the second ring.
func demoTopology(relayDeadline profirt.Ticks) profirt.SimTopology {
	east := demoConfig()
	east.Masters[0].Streams[0].Name = "relayin"
	east.Masters[0].Streams[0].Deadline = relayDeadline
	return profirt.SimTopology{
		Seed: 11,
		Segments: []profirt.SimTopologySegment{
			{Name: "west", Cfg: demoConfig()},
			{Name: "east", Cfg: east},
		},
		Bridges: []profirt.Bridge{{
			Name: "wb", From: "west", To: "east", Latency: 700,
			Relays: []profirt.Relay{{
				Name: "loop-relay", FromStream: "loop", ToStream: "relayin", Deadline: relayDeadline,
			}},
		}},
	}
}

func TestFacadeTopology(t *testing.T) {
	st := demoTopology(60_000)
	top := profirt.TopologyFromSimTopology(st)
	ana, err := profirt.AnalyzeTopology(top, profirt.TopologyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ana.Converged || !ana.Schedulable {
		t.Fatalf("demo topology should be schedulable: %+v", ana)
	}
	sim, err := profirt.SimulateTopology(st, profirt.TopologySimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Converged {
		t.Fatalf("simulation did not converge in %d rounds", sim.Rounds)
	}
	if sim.Relays[0].Relayed == 0 || sim.Relays[0].Missed != 0 {
		t.Errorf("relay observed %+v, want traffic with no misses", sim.Relays[0])
	}
	if sim.Relays[0].WorstEndToEnd > ana.Relays[0].EndToEnd {
		t.Errorf("observed end-to-end %v exceeds analytic bound %v",
			sim.Relays[0].WorstEndToEnd, ana.Relays[0].EndToEnd)
	}
}

// batchTopologies sweeps the relay deadline so the batch holds a mix of
// schedulable and unschedulable entries plus one invalid topology.
func batchTopologies() []profirt.Topology {
	var tops []profirt.Topology
	for _, d := range []profirt.Ticks{100, 5_000, 20_000, 60_000, 120_000} {
		tops = append(tops, profirt.TopologyFromSimTopology(demoTopology(d)))
	}
	bad := profirt.TopologyFromSimTopology(demoTopology(60_000))
	bad.Bridges[0].To = "nowhere"
	return append(tops, bad)
}

func TestAnalyzeTopologyBatchMatchesIndividual(t *testing.T) {
	tops := batchTopologies()
	got := profirt.AnalyzeTopologyBatch(tops, profirt.BatchOptions{Parallelism: 4})
	if len(got) != len(tops) {
		t.Fatalf("results = %d, want %d", len(got), len(tops))
	}
	for i, r := range got {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if r.Skipped {
			t.Errorf("result %d skipped without cancellation", i)
		}
		want, wantErr := profirt.AnalyzeTopology(tops[i], profirt.TopologyOptions{})
		if (r.Err == nil) != (wantErr == nil) {
			t.Errorf("topology %d: batch err %v, individual err %v", i, r.Err, wantErr)
		}
		if !reflect.DeepEqual(r.Result, want) {
			t.Errorf("topology %d: batch result diverges from AnalyzeTopology", i)
		}
	}
	if got[len(got)-1].Err == nil {
		t.Error("invalid topology produced no error")
	}
	if got[0].Result.Schedulable || !got[3].Result.Schedulable {
		t.Error("sweep should contain both verdicts")
	}
}

func TestAnalyzeTopologyBatchDeterministicAndCancelable(t *testing.T) {
	tops := batchTopologies()
	seq := profirt.AnalyzeTopologyBatch(tops, profirt.BatchOptions{Parallelism: 1})
	par := profirt.AnalyzeTopologyBatch(tops, profirt.BatchOptions{Parallelism: 8})
	if !reflect.DeepEqual(seq, par) {
		t.Error("sequential and 8-worker topology batches disagree")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range profirt.AnalyzeTopologyBatch(tops, profirt.BatchOptions{Context: ctx}) {
		if !r.Skipped {
			t.Errorf("topology %d evaluated despite cancelled context", i)
		}
	}
}

func TestFacadeEndToEndComposition(t *testing.T) {
	// R = 500 covers Q + C, so Q = 500 − 200 = 300 and
	// E = g + Q + C + d = 100 + 300 + 200 + 50 = 650.
	e := profirt.ComposeEndToEnd(100, 500, 200, 50)
	if e.Total() != 650 {
		t.Errorf("Total = %v, want 650", e.Total())
	}
	if e.Queuing != 300 {
		t.Errorf("Queuing = %v, want 300", e.Queuing)
	}
}
