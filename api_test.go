package profirt_test

import (
	"testing"

	"profirt"
)

// demoConfig builds a small two-master network through the public API.
func demoConfig() profirt.SimConfig {
	return profirt.SimConfig{
		Bus: profirt.DefaultBusParams(),
		TTR: 2_000,
		Masters: []profirt.SimMasterConfig{
			{
				Addr:       1,
				Dispatcher: profirt.DM,
				Streams: []profirt.SimStreamConfig{
					{Name: "loop", Slave: 30, High: true, Period: 20_000, Deadline: 15_000, ReqBytes: 2, RespBytes: 4},
					{Name: "bg", Slave: 30, High: false, Period: 100_000, Deadline: 100_000, ReqBytes: 8, RespBytes: 8},
				},
			},
			{
				Addr:       2,
				Dispatcher: profirt.DM,
				Streams: []profirt.SimStreamConfig{
					{Name: "poll", Slave: 30, High: true, Period: 40_000, Deadline: 30_000, ReqBytes: 4, RespBytes: 4},
				},
			},
		},
		Slaves:  []profirt.SimSlaveConfig{{Addr: 30, TSDR: 30}},
		Horizon: 400_000,
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	cfg := demoConfig()
	net := profirt.NetworkFromSimConfig(cfg)
	if len(net.Masters) != 2 {
		t.Fatalf("masters = %d, want 2", len(net.Masters))
	}
	if net.Masters[0].NH() != 1 || net.Masters[0].LongestLow == 0 {
		t.Error("master 1 model wrong")
	}
	if net.TokenPass == 0 {
		t.Error("token-pass overhead missing")
	}

	okDM, verdicts := profirt.DMSchedulable(net, profirt.DMMessageOptions{})
	if !okDM {
		t.Fatalf("demo network should be DM-schedulable: %+v", verdicts)
	}

	res, err := profirt.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vi := 0
	for mi, m := range res.PerMaster {
		for si, st := range m.PerStream {
			if !cfg.Masters[mi].Streams[si].High {
				continue
			}
			if st.WorstResponse > verdicts[vi].R {
				t.Errorf("stream %s: simulated %v > bound %v",
					verdicts[vi].Stream, st.WorstResponse, verdicts[vi].R)
			}
			vi++
		}
	}
}

func TestFacadeTaskAnalysis(t *testing.T) {
	ts := profirt.TaskSet{
		{Name: "a", C: 3, D: 7, T: 7},
		{Name: "b", C: 3, D: 12, T: 12},
		{Name: "c", C: 5, D: 20, T: 20},
	}
	ts = profirt.SortDM(ts)
	ok, rs := profirt.FPSchedulable(ts, profirt.FPOptions{Preemptive: true})
	if !ok || rs[2] != 20 {
		t.Errorf("classic set: ok=%v rs=%v", ok, rs)
	}
	if !profirt.EDFFeasiblePreemptive(ts).Feasible {
		t.Error("classic set must be EDF-feasible")
	}
	res, err := profirt.SimulateCPU(ts, profirt.CPUSimOptions{Policy: profirt.FPPreemptive})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerTask[2].WorstResponse != 20 {
		t.Errorf("simulated worst = %v, want 20", res.PerTask[2].WorstResponse)
	}
	if profirt.LiuLaylandBound(1) != 1 {
		t.Error("LL(1) must be 1")
	}
}

func TestFacadeEndToEndComposition(t *testing.T) {
	// R = 500 covers Q + C, so Q = 500 − 200 = 300 and
	// E = g + Q + C + d = 100 + 300 + 200 + 50 = 650.
	e := profirt.ComposeEndToEnd(100, 500, 200, 50)
	if e.Total() != 650 {
		t.Errorf("Total = %v, want 650", e.Total())
	}
	if e.Queuing != 300 {
		t.Errorf("Queuing = %v, want 300", e.Queuing)
	}
}
