module profirt

go 1.24
