package profirt_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"profirt"
	"profirt/internal/experiments"
	"profirt/internal/workload"
)

// This file holds the property the Engine redesign rests on: every
// Engine method must produce results byte-identical to the legacy free
// functions — and to itself — at any parallelism. The Engine only
// changes WHERE jobs run (one shared bounded pool with fair admission
// instead of per-call worker sets), never WHAT they compute:
// determinism is owned by per-job seed derivation and index-keyed
// result slots. Run under -race (make ci) these tests double as the
// data-race gate for the shared pool.

// enginePar is the parallelism ladder every equivalence property walks.
func enginePar() []int { return []int{1, 2, runtime.GOMAXPROCS(0)} }

func TestEngineEquivalenceAnalyzeNetworks(t *testing.T) {
	nets := equivNets(101, 40, 2)
	want := profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: 1})
	for _, p := range enginePar() {
		eng := profirt.NewEngine(profirt.WithParallelism(p))
		got, err := eng.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{})
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: Engine.AnalyzeNetworks diverged from legacy AnalyzeBatch", p)
		}
	}
	// A cached Engine must agree too (cache equivalence is proved in
	// cache_equiv_test.go; here we assert the Engine wires it through).
	eng := profirt.NewEngine(profirt.WithCache(profirt.NewAnalysisCache(0)))
	defer eng.Close()
	if got, err := eng.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{}); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("cached Engine.AnalyzeNetworks diverged (err=%v)", err)
	}
	if eng.Cache().Stats().Misses == 0 {
		t.Fatal("Engine cache never consulted")
	}
}

func TestEngineEquivalenceAnalyzeTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	tops := make([]profirt.Topology, 0, 12)
	for i := 0; i < 6; i++ {
		tops = append(tops, equivTopology(rng))
	}
	tops = append(tops, tops[:6]...)
	want := profirt.AnalyzeTopologyBatch(tops, profirt.BatchOptions{Parallelism: 1})
	for _, p := range enginePar() {
		eng := profirt.NewEngine(profirt.WithParallelism(p))
		got, err := eng.AnalyzeTopologies(context.Background(), tops, profirt.TopologyAnalyzeOptions{})
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if fmt.Sprint(want[i].Err) != fmt.Sprint(got[i].Err) {
				t.Fatalf("parallelism %d: topology %d error mismatch", p, i)
			}
			if want[i].Err == nil && !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("parallelism %d: Engine.AnalyzeTopologies diverged on topology %d", p, i)
			}
		}
	}
}

func TestEngineRejectsNegativeMaxIterations(t *testing.T) {
	eng := profirt.NewEngine(profirt.WithParallelism(1))
	defer eng.Close()
	if _, err := eng.AnalyzeTopologies(context.Background(), nil, profirt.TopologyAnalyzeOptions{MaxIterations: -1}); err == nil {
		t.Fatal("negative MaxIterations accepted")
	}
}

func TestEngineEquivalenceAnalyzeHolistic(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	eng := profirt.NewEngine(profirt.WithParallelism(2), profirt.WithCache(profirt.NewAnalysisCache(0)))
	defer eng.Close()
	for trial := 0; trial < 10; trial++ {
		cfg := equivHolistic(rng, profirt.DM)
		want, errW := profirt.AnalyzeHolistic(cfg)
		got, errG := eng.AnalyzeHolistic(context.Background(), cfg)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errG, errW)
		}
		if errW == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Engine.AnalyzeHolistic diverged", trial)
		}
	}
}

// equivSimConfigs draws small simulator configurations with jitter
// active, so per-run seed derivation is on the tested path.
func equivSimConfigs(seed int64, n int) []profirt.SimConfig {
	rng := rand.New(rand.NewSource(seed))
	cfgs := make([]profirt.SimConfig, n)
	for i := range cfgs {
		p := workload.DefaultStreamSetParams()
		p.Masters, p.StreamsPerMaster = 1+rng.Intn(2), 1+rng.Intn(3)
		p.MaxJitter = 1_500
		_, cfg := workload.StreamSet(rng, p)
		cfg.Horizon = 150_000
		cfgs[i] = cfg
	}
	return cfgs
}

func TestEngineEquivalenceSimulateBatch(t *testing.T) {
	cfgs := equivSimConfigs(131, 12)
	want := profirt.SimulateBatch(cfgs, profirt.SimBatchOptions{Parallelism: 1, Seed: 7})
	for _, p := range enginePar() {
		eng := profirt.NewEngine(profirt.WithParallelism(p))
		got, err := eng.SimulateBatch(context.Background(), cfgs, profirt.SimulateOptions{Seed: 7})
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: Engine.SimulateBatch diverged from legacy SimulateBatch", p)
		}
	}
	// Single-run methods agree with the batch's per-run seed contract.
	eng := profirt.NewEngine(profirt.WithParallelism(1))
	defer eng.Close()
	cfg := cfgs[3]
	cfg.Seed = profirt.SimBatchSeed(7, 3)
	single, err := eng.Simulate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, want[3].Result) {
		t.Fatal("Engine.Simulate diverged from the batch run of the same config+seed")
	}
}

// engineCampaignManifest is a small grid (2 networks' worth of rows via
// two deadline scales, two policies, two trials).
const engineCampaignManifest = `{
  "name": "engine-equiv",
  "seed": 5,
  "trials": 2,
  "policies": ["fcfs", "dm"],
  "deadlineScales": [1.0, 0.5],
  "networks": [{"name": "cell", "network": {
    "ttr": 2000, "horizon": 250000,
    "masters": [
      {"addr": 1, "streams": [
        {"name": "a", "slave": 30, "high": true, "period": 20000, "deadline": 15000},
        {"name": "b", "slave": 30, "high": true, "period": 50000, "deadline": 40000}]}
    ],
    "slaves": [{"addr": 30, "tsdr": 30}]
  }}]
}`

func TestEngineEquivalenceRunCampaign(t *testing.T) {
	c, err := profirt.ParseCampaign([]byte(engineCampaignManifest))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := c.Run(profirt.CampaignRunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := legacy.Table.String()
	for _, p := range enginePar() {
		store, err := profirt.OpenResultStore(
			fmt.Sprintf("%s/c%d.jsonl", t.TempDir(), p), c.Hash[:])
		if err != nil {
			t.Fatal(err)
		}
		eng := profirt.NewEngine(profirt.WithParallelism(p), profirt.WithStore(store))
		res, err := eng.RunCampaign(context.Background(), c, profirt.CampaignOptions{})
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Table.String(); got != want {
			t.Fatalf("parallelism %d: Engine.RunCampaign table diverged:\n--- engine ---\n%s--- legacy ---\n%s", p, got, want)
		}
		if res.Executed != res.Jobs || res.Skipped != 0 {
			t.Fatalf("parallelism %d: unexpected counts %+v", p, res)
		}
		// A second run against the Engine's store restores everything.
		eng2 := profirt.NewEngine(profirt.WithParallelism(p), profirt.WithStore(store))
		warm, err := eng2.RunCampaign(context.Background(), c, profirt.CampaignOptions{})
		eng2.Close()
		if err != nil {
			t.Fatal(err)
		}
		if warm.Restored != warm.Jobs || warm.Table.String() != want {
			t.Fatalf("parallelism %d: warm Engine.RunCampaign diverged (%+v)", p, warm)
		}
		store.Close()
	}
}

func TestEngineEquivalenceRunExperiments(t *testing.T) {
	// One representative message-level experiment, quick size; the
	// direct driver (legacy path) is the reference.
	want := experimentTables(t, "E7")
	for _, p := range enginePar() {
		eng := profirt.NewEngine(profirt.WithParallelism(p))
		res, err := eng.RunExperiments(context.Background(), []string{"E7"}, profirt.ExperimentOptions{Quick: true})
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].ID != "E7" {
			t.Fatalf("parallelism %d: unexpected result set %+v", p, res)
		}
		if got := tableStrings(res[0].Tables); got != want {
			t.Fatalf("parallelism %d: Engine.RunExperiments tables diverged:\n--- engine ---\n%s--- legacy ---\n%s", p, got, want)
		}
	}
	eng := profirt.NewEngine(profirt.WithParallelism(1))
	defer eng.Close()
	if _, err := eng.RunExperiments(context.Background(), []string{"E99"}, profirt.ExperimentOptions{Quick: true}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// TestEngineSharedUseUnderConcurrency drives one Engine from many
// goroutines mixing workloads — the deployment shape the redesign is
// for — and requires every caller to see exactly the sequential
// results. Under -race this is the integration-level data-race gate.
func TestEngineSharedUseUnderConcurrency(t *testing.T) {
	nets := equivNets(139, 24, 2)
	cfgs := equivSimConfigs(149, 8)
	wantNets := profirt.AnalyzeBatch(nets, profirt.BatchOptions{Parallelism: 1})
	wantSims := profirt.SimulateBatch(cfgs, profirt.SimBatchOptions{Parallelism: 1, Seed: 3})

	eng := profirt.NewEngine(profirt.WithParallelism(4), profirt.WithCache(profirt.NewAnalysisCache(0)))
	defer eng.Close()
	const callers = 6
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for w := 0; w < callers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if w%2 == 0 {
				got, err := eng.AnalyzeNetworks(context.Background(), nets, profirt.AnalyzeOptions{})
				if err != nil {
					errs[w] = err
				} else if !reflect.DeepEqual(got, wantNets) {
					errs[w] = fmt.Errorf("caller %d: analysis diverged under concurrency", w)
				}
			} else {
				got, err := eng.SimulateBatch(context.Background(), cfgs, profirt.SimulateOptions{Seed: 3})
				if err != nil {
					errs[w] = err
				} else if !reflect.DeepEqual(got, wantSims) {
					errs[w] = fmt.Errorf("caller %d: simulation diverged under concurrency", w)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// experimentTables runs one experiment via the direct (legacy) driver
// at quick size and renders its tables.
func experimentTables(t *testing.T, id string) string {
	t.Helper()
	ex, ok := experiments.ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	return tableStrings(ex.Run(experiments.QuickConfig()))
}

func tableStrings(tables []*profirt.Table) string {
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestEngineCancellationMarksSkipped(t *testing.T) {
	nets := equivNets(151, 16, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := profirt.NewEngine(profirt.WithParallelism(2))
	defer eng.Close()
	res, err := eng.AnalyzeNetworks(ctx, nets, profirt.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Skipped || r.Index != i {
			t.Fatalf("result %d not marked skipped after pre-cancel: %+v", i, r)
		}
	}
	if _, err := eng.AnalyzeHolistic(ctx, profirt.HolisticConfig{}); err == nil {
		t.Fatal("AnalyzeHolistic ignored a cancelled context")
	}
	if _, err := eng.Simulate(ctx, profirt.SimConfig{}); err == nil {
		t.Fatal("Simulate ignored a cancelled context")
	}
}

func TestEngineProgressAndRowSink(t *testing.T) {
	c, err := profirt.ParseCampaign([]byte(engineCampaignManifest))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events, rows int
	eng := profirt.NewEngine(
		profirt.WithParallelism(2),
		profirt.WithProgress(func(ev profirt.EngineEvent) {
			mu.Lock()
			if ev.Op == "campaign" {
				events++
			}
			mu.Unlock()
		}),
		profirt.WithRowSink(func(ev profirt.TableRowEvent) {
			mu.Lock()
			rows++
			mu.Unlock()
		}),
	)
	defer eng.Close()
	res, err := eng.RunCampaign(context.Background(), c, profirt.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if events != res.Jobs {
		t.Fatalf("progress reported %d events for %d jobs", events, res.Jobs)
	}
	if rows != c.Rows() {
		t.Fatalf("row sink saw %d rows, want %d", rows, c.Rows())
	}
}
